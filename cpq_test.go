package cpq

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestRegistryKnowsAllNames(t *testing.T) {
	for _, name := range Names() {
		q, err := New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if q.Name() == "" {
			t.Fatalf("queue %q has empty Name()", name)
		}
	}
}

func TestRegistryNameMatchesIdentifier(t *testing.T) {
	// For the paper's seven variants, the constructed queue must report
	// exactly the identifier used in the figures.
	for _, name := range PaperNames() {
		q, err := New(name, 8)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if q.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, q.Name())
		}
	}
}

func TestRegistryParameterized(t *testing.T) {
	q, err := New("klsm64", 2)
	if err != nil || q.Name() != "klsm64" {
		t.Fatalf("klsm64: %v, %v", q, err)
	}
	if _, err := New("klsmX", 2); err == nil {
		t.Fatal("bad klsm spec accepted")
	}
	if _, err := New("slsm0", 2); err == nil {
		t.Fatal("slsm0 accepted")
	}
	if _, err := New("nope", 2); err == nil {
		t.Fatal("unknown queue accepted")
	}
	if q, err := New("multiq2", 3); err != nil || q.Name() != "multiq" {
		t.Fatalf("multiq2: %v, %v", q, err)
	}
	if q, err := New(" LINDEN ", 0); err != nil || q.Name() != "linden" {
		t.Fatalf("case/space-insensitive parse failed: %v", err)
	}
}

func TestSortNames(t *testing.T) {
	names := []string{"zzz", "multiq", "klsm4096", "aaa", "linden", "klsm128"}
	SortNames(names)
	want := []string{"klsm128", "klsm4096", "linden", "multiq", "aaa", "zzz"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SortNames = %v, want %v", names, want)
		}
	}
}

// TestEveryQueueBasicContract runs the same sequential contract over every
// registered implementation: fresh queue is empty; inserted items come back
// with their values; the queue is empty after draining; and a quiescent
// single-handle drain of a strict queue is sorted.
func TestEveryQueueBasicContract(t *testing.T) {
	strict := map[string]bool{"linden": true, "globallock": true, "lotan": true, "hunt": true, "mound": true, "cbpq": true, "locksl": true, "dlsm": true}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			if _, _, ok := h.DeleteMin(); ok {
				t.Fatal("fresh queue not empty")
			}
			r := rng.New(7)
			const n = 2000
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = r.Uint64() % 10000
				h.Insert(keys[i], keys[i]*2)
			}
			got := make([]uint64, 0, n)
			for {
				k, v, ok := h.DeleteMin()
				if !ok {
					break
				}
				if v != k*2 {
					t.Fatalf("value mismatch: key %d value %d", k, v)
				}
				got = append(got, k)
			}
			if len(got) != n {
				t.Fatalf("drained %d of %d", len(got), n)
			}
			if strict[name] && !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatal("strict queue drained out of order")
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for i := range keys {
				if keys[i] != got[i] {
					t.Fatalf("multiset mismatch at %d", i)
				}
			}
			if _, _, ok := h.DeleteMin(); ok {
				t.Fatal("queue not empty after drain")
			}
		})
	}
}

// TestEveryQueueConcurrentSmoke hammers each implementation with a short
// mixed workload under the race detector and verifies nothing is lost.
func TestEveryQueueConcurrentSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			const workers = 4
			q, err := New(name, workers)
			if err != nil {
				t.Fatal(err)
			}
			var inserted, deleted sync.Map
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := q.Handle()
					r := rng.New(uint64(w) + 91)
					for i := 0; i < 1500; i++ {
						k := r.Uint64() // unique with overwhelming probability
						h.Insert(k, k)
						inserted.Store(k, true)
						if i%2 == 0 {
							if k, _, ok := h.DeleteMin(); ok {
								if _, dup := deleted.LoadOrStore(k, true); dup {
									t.Errorf("key %d deleted twice", k)
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					break
				}
				if _, dup := deleted.LoadOrStore(k, true); dup {
					t.Fatalf("key %d deleted twice during drain", k)
				}
			}
			count := 0
			inserted.Range(func(k, _ any) bool {
				if _, ok := deleted.Load(k); !ok {
					t.Fatalf("key %v lost", k)
				}
				count++
				return true
			})
			deletedCount := 0
			deleted.Range(func(any, any) bool { deletedCount++; return true })
			if deletedCount != count {
				t.Fatalf("deleted %d keys but inserted %d", deletedCount, count)
			}
		})
	}
}

func TestRegistryEngineeredMultiQueue(t *testing.T) {
	q, err := New("multiq-s4-b8", 4)
	if err != nil || q.Name() != "multiq-s4-b8" {
		t.Fatalf("multiq-s4-b8: %v, %v", q, err)
	}
	q, err = New("multiq-c8-s2-b4", 2)
	if err != nil || q.Name() != "multiq-c8-s2-b4" {
		t.Fatalf("multiq-c8-s2-b4: %v, %v", q, err)
	}
	// Partial specs default the omitted parameters (c=4, s=1, b=1).
	q, err = New("multiq-b8", 1)
	if err != nil || q.Name() != "multiq-s1-b8" {
		t.Fatalf("multiq-b8: %v, %v", q, err)
	}
	for _, bad := range []string{"multiq-", "multiq-x4", "multiq-s0", "multiq-s", "multiq-s4-b8-z1"} {
		if _, err := New(bad, 1); err == nil {
			t.Fatalf("New(%q) accepted a bad engineered spec", bad)
		}
	}
}

// TestEngineeredMatchesSeedSemantics drains engineered and seed MultiQueues
// loaded with the same items: both must return the same multiset.
func TestEngineeredMatchesSeedSemantics(t *testing.T) {
	seedQ, _ := New("multiq", 2)
	engQ, _ := New("multiq-s4-b8", 2)
	r := rng.New(99)
	var keys []uint64
	for i := 0; i < 3000; i++ {
		keys = append(keys, r.Uint64()%5000)
	}
	drain := func(q Queue) []uint64 {
		h := q.Handle()
		for _, k := range keys {
			h.Insert(k, k)
		}
		var out []uint64
		for {
			k, _, ok := h.DeleteMin()
			if !ok {
				break
			}
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a, b := drain(seedQ), drain(engQ)
	if len(a) != len(keys) || len(b) != len(keys) {
		t.Fatalf("drained %d/%d of %d", len(a), len(b), len(keys))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
