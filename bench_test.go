// Benchmarks regenerating every figure and table of the paper's evaluation.
//
// Naming maps directly onto the paper:
//
//   - BenchmarkFig4a ... BenchmarkFig4h — the eight throughput panels of
//     Figure 4 (Figures 1-3 of the brief announcement are panels 4a, 4e,
//     4g); Figures 5-7 are the same panels on other machines and therefore
//     the same code. Reported metric: MOps/s (also derivable from ns/op).
//   - BenchmarkFig8a ... BenchmarkFig8c — the alternating-workload panels
//     of Figures 8/9.
//   - BenchmarkTable2a ... BenchmarkTable2h, BenchmarkTable5a-c — the rank
//     error tables (Table 1 = Table 2a); reported metrics: mean_rank and
//     stddev_rank.
//   - BenchmarkAblation* — design-choice sweeps called out in DESIGN.md.
//
// Sub-benchmarks are <queue>/t<threads>. Benchmark prefill is reduced to
// 100k items (vs the CLI's 10^6) to keep `go test -bench=.` tractable; use
// cmd/pqbench for paper-scale parameters.
package cpq_test

import (
	"fmt"
	"sync"
	"testing"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

const benchPrefill = 100_000

var benchThreads = []int{1, 4}

func factory(name string) func(int) pq.Queue {
	return func(t int) pq.Queue {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
		if err != nil {
			panic(err)
		}
		return q
	}
}

// benchThroughputCell drives b.N operations split across p workers over a
// prefilled queue — the benchmark loop of the paper's throughput benchmark
// with testing.B deciding the operation count.
func benchThroughputCell(b *testing.B, newQueue func(int) pq.Queue, p int, wl workload.Kind, kd keys.Distribution) {
	q := newQueue(p)
	harness.PrefillQueue(q, harness.Config{
		NewQueue: newQueue, Threads: p, Workload: wl, KeyDist: kd,
		Prefill: benchPrefill, Seed: 1,
	})
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		n := b.N / p
		if w < b.N%p {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w)*0x6a09e667f3bcc909 + 1)
			gen := keys.NewGenerator(kd, r)
			policy := workload.ForWorker(wl, w, p, 0.5, r)
			for i := 0; i < n; i++ {
				if policy.Next() == workload.Insert {
					h.Insert(gen.Next(), uint64(w))
				} else {
					h.DeleteMin()
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/1e6/b.Elapsed().Seconds(), "MOps/s")
}

func benchFigure(b *testing.B, wl workload.Kind, kd keys.Distribution) {
	for _, name := range cpq.PaperNames() {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/t%d", name, p), func(b *testing.B) {
				benchThroughputCell(b, factory(name), p, wl, kd)
			})
		}
	}
}

// Figure 4 (mars; = Figures 5, 6, 7 on saturn/ceres/pluto).
// Figure 1 of the brief announcement is Figure 4a.
func BenchmarkFig4a(b *testing.B) { benchFigure(b, workload.Uniform, keys.Uniform32) }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, workload.Uniform, keys.Ascending) }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, workload.Uniform, keys.Descending) }
func BenchmarkFig4d(b *testing.B) { benchFigure(b, workload.Split, keys.Uniform32) }

// Figure 2 of the brief announcement is Figure 4e.
func BenchmarkFig4e(b *testing.B) { benchFigure(b, workload.Split, keys.Ascending) }
func BenchmarkFig4f(b *testing.B) { benchFigure(b, workload.Split, keys.Descending) }

// Figure 3 of the brief announcement is Figure 4g.
func BenchmarkFig4g(b *testing.B) { benchFigure(b, workload.Uniform, keys.Uniform8) }
func BenchmarkFig4h(b *testing.B) { benchFigure(b, workload.Uniform, keys.Uniform16) }

// Figures 8/9: alternating workload.
func BenchmarkFig8a(b *testing.B) { benchFigure(b, workload.Alternating, keys.Uniform32) }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, workload.Alternating, keys.Ascending) }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, workload.Alternating, keys.Descending) }

// benchQualityCell runs the rank-error benchmark and reports rank metrics.
// b.N scales the per-thread operation count.
func benchQualityCell(b *testing.B, name string, p int, wl workload.Kind, kd keys.Distribution) {
	ops := b.N
	if ops < 2000 {
		ops = 2000 // enough deletions for a meaningful rank distribution
	}
	res := quality.Run(quality.Config{
		NewQueue:     factory(name),
		Threads:      p,
		OpsPerThread: ops / p,
		Workload:     wl,
		KeyDist:      kd,
		Prefill:      20_000,
		Seed:         1,
	})
	b.ReportMetric(res.MeanRank, "mean_rank")
	b.ReportMetric(res.StddevRank, "stddev_rank")
}

func benchTable(b *testing.B, wl workload.Kind, kd keys.Distribution) {
	for _, name := range cpq.PaperNames() {
		for _, p := range []int{2, 4, 8} { // the paper's quality thread counts
			b.Run(fmt.Sprintf("%s/t%d", name, p), func(b *testing.B) {
				benchQualityCell(b, name, p, wl, kd)
			})
		}
	}
}

// Table 2 (mars; = Tables 3, 4 on saturn/ceres). Table 1 is Table 2a.
func BenchmarkTable2a(b *testing.B) { benchTable(b, workload.Uniform, keys.Uniform32) }
func BenchmarkTable2b(b *testing.B) { benchTable(b, workload.Uniform, keys.Ascending) }
func BenchmarkTable2c(b *testing.B) { benchTable(b, workload.Uniform, keys.Descending) }
func BenchmarkTable2d(b *testing.B) { benchTable(b, workload.Split, keys.Uniform32) }
func BenchmarkTable2e(b *testing.B) { benchTable(b, workload.Split, keys.Ascending) }
func BenchmarkTable2f(b *testing.B) { benchTable(b, workload.Split, keys.Descending) }
func BenchmarkTable2g(b *testing.B) { benchTable(b, workload.Uniform, keys.Uniform8) }
func BenchmarkTable2h(b *testing.B) { benchTable(b, workload.Uniform, keys.Uniform16) }

// Table 5: rank error under the alternating workload.
func BenchmarkTable5a(b *testing.B) { benchTable(b, workload.Alternating, keys.Uniform32) }
func BenchmarkTable5b(b *testing.B) { benchTable(b, workload.Alternating, keys.Ascending) }
func BenchmarkTable5c(b *testing.B) { benchTable(b, workload.Alternating, keys.Descending) }

// --- Ablations (design-choice benches from DESIGN.md §10) -----------------

// AblationKLSMRelaxation sweeps the k-LSM's k, including k=16 which the
// paper says behaves like the Lindén queue, on the headline cell (4a).
func BenchmarkAblationKLSMRelaxation(b *testing.B) {
	for _, k := range []int{16, 128, 256, 4096} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("k%d/t%d", k, p), func(b *testing.B) {
				benchThroughputCell(b, func(int) pq.Queue { return cpq.NewKLSM(k) },
					p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// AblationKLSMComponents benchmarks the k-LSM's components standalone: the
// DLSM (thread-local + spy) and the SLSM (global, relaxation 256).
func BenchmarkAblationKLSMComponents(b *testing.B) {
	for _, name := range []string{"dlsm", "slsm256", "klsm256"} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/t%d", name, p), func(b *testing.B) {
				benchThroughputCell(b, factory(name), p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// AblationMultiQueueC sweeps the MultiQueue's queues-per-thread factor
// (the paper fixes c=4).
func BenchmarkAblationMultiQueueC(b *testing.B) {
	for _, c := range []int{1, 2, 4, 8} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("c%d/t%d", c, p), func(b *testing.B) {
				benchThroughputCell(b, func(t int) pq.Queue { return cpq.NewMultiQueue(c, t) },
					p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// AblationLindenBound sweeps the Lindén queue's physical-deletion batching
// threshold, its central design parameter.
func BenchmarkAblationLindenBound(b *testing.B) {
	for _, bound := range []int{1, 32, 128, 512} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("bound%d/t%d", bound, p), func(b *testing.B) {
				benchThroughputCell(b, func(int) pq.Queue { return cpq.NewLindenBound(bound) },
					p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// AblationSprayVsScan compares the SprayList against the Shavit-Lotan queue
// on the same skiplist substrate: the only difference is the sprayed vs.
// strict head scan in DeleteMin, isolating the spray walk's effect.
func BenchmarkAblationSprayVsScan(b *testing.B) {
	for _, name := range []string{"spray", "lotan"} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/t%d", name, p), func(b *testing.B) {
				benchThroughputCell(b, factory(name), p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// AblationMultiQueueSubHeap compares binary vs. 4-ary sub-heaps inside the
// MultiQueue (Larkin-Sen-Tarjan style sequential-heap engineering).
func BenchmarkAblationMultiQueueSubHeap(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func(t int) pq.Queue
	}{
		{"binary", func(t int) pq.Queue { return cpq.NewMultiQueue(4, t) }},
		{"4ary", func(t int) pq.Queue { return cpq.NewMultiQueueDAry(4, t, 4) }},
		{"pairing", func(t int) pq.Queue { return cpq.NewMultiQueuePairing(4, t) }},
	} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/t%d", tc.name, p), func(b *testing.B) {
				benchThroughputCell(b, tc.mk, p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// --- Engineered MultiQueue (Williams-Sanders stickiness + buffers) -------

// engineeredSet is the engineered-MultiQueue comparison set: the seed
// MultiQueue, the engineered variant at the default tuning, and the paper's
// strongest k-LSM.
var engineeredSet = []string{"multiq", "multiq-s4-b8", "klsm4096"}

// BenchmarkMultiQueueEngineered is the acceptance benchmark for the
// engineered MultiQueue: the comparison set at 8 threads on the headline
// cell (uniform workload, uniform 32-bit keys — figure 4a). Sub-benchmarks
// are benchstat-comparable across queues via the reported MOps/s metric:
//
//	go test -bench=MultiQueueEngineered -benchtime=2s -count=5 | benchstat -
func BenchmarkMultiQueueEngineered(b *testing.B) {
	for _, name := range engineeredSet {
		b.Run(fmt.Sprintf("%s/t8", name), func(b *testing.B) {
			benchThroughputCell(b, factory(name), 8, workload.Uniform, keys.Uniform32)
		})
	}
}

// BenchmarkEngineeredGrid sweeps the engineered comparison set across the
// paper's full workload × key-distribution grid (the cells of Figures 4
// and 8), so the stickiness/buffering trade-off is visible beyond the
// headline cell.
func BenchmarkEngineeredGrid(b *testing.B) {
	for _, cell := range cli.Figures() {
		for _, name := range engineeredSet {
			for _, p := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/t%d", cell.ID, name, p), func(b *testing.B) {
					benchThroughputCell(b, factory(name), p, cell.Workload, cell.KeyDist)
				})
			}
		}
	}
}

// BenchmarkAblationMultiQueueStickBuf sweeps the engineered variant's two
// knobs independently on the headline cell: stickiness with buffering off,
// buffering with stickiness off, and both combined.
func BenchmarkAblationMultiQueueStickBuf(b *testing.B) {
	for _, tc := range []struct{ s, bsz int }{
		{1, 1}, {4, 1}, {8, 1}, {1, 8}, {1, 16}, {4, 8}, {8, 16},
	} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("s%d-b%d/t%d", tc.s, tc.bsz, p), func(b *testing.B) {
				benchThroughputCell(b, func(t int) pq.Queue {
					return cpq.NewMultiQueueEngineered(4, t, tc.s, tc.bsz)
				}, p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// --- k-LSM hot path (pooled blocks, scratch merges, pivot reuse) ---------

// klsmSet is the k-LSM acceptance comparison set: the paper's three
// relaxation settings on the headline cell.
var klsmSet = []string{"klsm128", "klsm256", "klsm4096"}

// BenchmarkKLSM is the acceptance benchmark for the allocation-lean k-LSM:
// the paper's k sweep at 8 threads on the headline cell (uniform workload,
// uniform 32-bit keys — figure 4a). Benchstat-comparable across commits:
//
//	go test -bench='^BenchmarkKLSM$' -benchmem -benchtime=1s -count=3 | benchstat -
func BenchmarkKLSM(b *testing.B) {
	for _, name := range klsmSet {
		b.Run(fmt.Sprintf("%s/t8", name), func(b *testing.B) {
			benchThroughputCell(b, factory(name), 8, workload.Uniform, keys.Uniform32)
		})
	}
}

// BenchmarkKLSMInsertDeleteMin is the single-threaded insert+delete-min
// microbenchmark behind the allocs/op acceptance target: one handle
// alternating Insert and DeleteMin at steady state, so the allocs/op column
// (-benchmem) isolates the k-LSM's per-operation allocation behaviour from
// scheduler and contention noise.
func BenchmarkKLSMInsertDeleteMin(b *testing.B) {
	for _, k := range []int{128, 4096} {
		b.Run(fmt.Sprintf("klsm%d", k), func(b *testing.B) {
			q := cpq.NewKLSM(k)
			h := q.Handle()
			r := rng.New(1)
			for i := 0; i < 3*k; i++ { // reach steady state before measuring
				h.Insert(r.Uint64()&0xffffffff, 0)
				h.DeleteMin()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Insert(r.Uint64()&0xffffffff, 0)
				h.DeleteMin()
			}
		})
	}
}

// BenchmarkSkiplistPQ is the acceptance benchmark for the arena-backed
// packed-word skiplist substrate: the fig-4a headline cell (uniform
// workload, uniform 32-bit keys) at 8 threads for the three skiplist-based
// queues. Benchstat-comparable across commits:
//
//	go test -bench='^BenchmarkSkiplistPQ$' -benchmem -benchtime=1s -count=3 | benchstat -
func BenchmarkSkiplistPQ(b *testing.B) {
	for _, name := range []string{"linden", "spray", "lotan"} {
		b.Run(fmt.Sprintf("%s/t8", name), func(b *testing.B) {
			benchThroughputCell(b, factory(name), 8, workload.Uniform, keys.Uniform32)
		})
	}
}

// BenchmarkLindenInsertDeleteMin is the single-threaded insert+delete-min
// microbenchmark behind the skiplist allocs/op acceptance target: one
// handle alternating Insert and DeleteMin over a live working set, so the
// allocs/op column (-benchmem) isolates the substrate's per-operation
// allocation behaviour from scheduler and contention noise. The working
// set matters: alternating on a near-empty queue is a known Lindén
// pathology (each insert splices in front of the dead prefix, so the
// restructure trigger never fires and the dead chain grows without bound)
// and measures that degenerate walk, not the substrate. Expected: 0
// allocs/op on DeleteMin and the rare slab refill on Insert (<=0.01
// allocs/op for the pair).
func BenchmarkLindenInsertDeleteMin(b *testing.B) {
	q := factory("linden")(1)
	h := q.Handle()
	r := rng.New(1)
	for i := 0; i < 8192; i++ { // live working set
		h.Insert(r.Uint64()&0xffffffff, 0)
	}
	for i := 0; i < 4096; i++ { // reach steady state before measuring
		h.Insert(r.Uint64()&0xffffffff, 0)
		h.DeleteMin()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(r.Uint64()&0xffffffff, 0)
		h.DeleteMin()
	}
}

// AblationExtensions covers the appendix-D extension queues on the
// headline cell for completeness.
func BenchmarkAblationExtensions(b *testing.B) {
	for _, name := range []string{"hunt", "mound", "lotan", "cbpq", "locksl"} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/t%d", name, p), func(b *testing.B) {
				benchThroughputCell(b, factory(name), p, workload.Uniform, keys.Uniform32)
			})
		}
	}
}

// benchHandleChurn drives the goroutine-churn benchmark: b.N operations
// spread over short-lived goroutines (burst of 64 ops each) across 8
// spawn-join slots, with the handle lifecycle under test — the elastic
// pq.Pool versus the naive mutex-guarded free list. The MOps/s metric
// includes checkout/checkin cost; the handles metric shows how many real
// handles backed the churn.
func benchHandleChurn(b *testing.B, name string, naive bool) {
	const burst, slots = 64, 8
	g := b.N/burst + 1
	if g < slots {
		g = slots
	}
	st := harness.RunChurn(harness.ChurnConfig{
		NewQueue:   factory(name),
		Slots:      slots,
		Goroutines: g,
		BurstOps:   burst,
		Prefill:    benchPrefill,
		Naive:      naive,
		Seed:       1,
	})
	b.StopTimer()
	b.ReportMetric(st.MOps(), "MOps/s")
	b.ReportMetric(float64(st.HandlesCreated), "handles")
}

// BenchmarkHandleChurn compares the pooled lifecycle against the naive
// baseline on the two acceptance queues (see EXPERIMENTS.md §churn).
func BenchmarkHandleChurn(b *testing.B) {
	for _, name := range []string{"klsm4096", "multiq"} {
		for _, mode := range []struct {
			label string
			naive bool
		}{{"pool", false}, {"naive", true}} {
			b.Run(fmt.Sprintf("%s/%s", name, mode.label), func(b *testing.B) {
				benchHandleChurn(b, name, mode.naive)
			})
		}
	}
}
