package cpq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

// rngNew keeps the test body terse.
func rngNew(seed uint64) *rng.Xoroshiro { return rng.New(seed) }

// TestHarnessMatrix drives the throughput harness over every registered
// queue crossed with every workload and key distribution at a tiny scale:
// the full benchmark grid as an integration test. It asserts liveness (ops
// complete, the run terminates) and basic sanity of the results.
func TestHarnessMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is ~100 cells; skipped in -short")
	}
	for _, name := range Names() {
		for _, wl := range workload.All() {
			for _, kd := range []keys.Distribution{keys.Uniform32, keys.Uniform8, keys.Ascending, keys.HoldAscending} {
				name, wl, kd := name, wl, kd
				t.Run(name+"/"+wl.String()+"/"+kd.String(), func(t *testing.T) {
					res := harness.Run(harness.Config{
						NewQueue: func(p int) pq.Queue {
							q, err := New(name, p)
							if err != nil {
								t.Fatal(err)
							}
							return q
						},
						Threads:  3,
						Duration: 10 * time.Millisecond,
						Workload: wl,
						KeyDist:  kd,
						Prefill:  2000,
						Seed:     7,
					})
					if res.Ops == 0 {
						t.Fatal("no operations completed")
					}
					if res.EmptyDeletes > res.Ops {
						t.Fatalf("empty deletes %d exceed ops %d", res.EmptyDeletes, res.Ops)
					}
				})
			}
		}
	}
}

// TestQualityMatrix runs the rank-error pipeline over every queue on the
// headline cell and checks structural properties of the result: the
// histogram accounts for every deletion, strict queues stay near zero, and
// relaxed queues respect (loosely) their advertised bounds.
func TestQualityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short")
	}
	strictMax := map[string]float64{
		// Strict structures may show small nonzero means from the
		// stamping pessimism; anything beyond a few slots is a bug.
		"globallock": 0.01, "linden": 8, "lotan": 8, "hunt": 8, "mound": 8, "cbpq": 8, "locksl": 8,
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := quality.Run(quality.Config{
				NewQueue: func(p int) pq.Queue {
					q, err := New(name, p)
					if err != nil {
						t.Fatal(err)
					}
					return q
				},
				Threads:      2,
				OpsPerThread: 4000,
				Workload:     workload.Uniform,
				KeyDist:      keys.Uniform32,
				Prefill:      4000,
				Seed:         11,
			})
			if res.Deletions == 0 {
				t.Fatal("no deletions replayed")
			}
			var histSum uint64
			for _, c := range res.Histogram {
				histSum += c
			}
			if histSum != res.Deletions {
				t.Fatalf("histogram sums to %d, deletions %d", histSum, res.Deletions)
			}
			if max, ok := strictMax[name]; ok && res.MeanRank > max {
				t.Fatalf("strict queue %s mean rank %.2f > %.2f", name, res.MeanRank, max)
			}
			if name == "klsm128" && res.MeanRank > 128*3 {
				t.Fatalf("klsm128 mean rank %.2f far beyond kP", res.MeanRank)
			}
		})
	}
}

// TestRunOpsMatchesRunSemantics: the latency-mode harness must produce the
// same kind of accounting as the duration-mode one.
func TestRunOpsMatchesRunSemantics(t *testing.T) {
	cfg := harness.Config{
		NewQueue: func(p int) pq.Queue { return NewGlobalLock() },
		Threads:  2,
		Workload: workload.Alternating,
		KeyDist:  keys.Uniform32,
		Prefill:  100,
		Seed:     3,
	}
	res := harness.RunOps(cfg, 500)
	if res.Ops != 1000 {
		t.Fatalf("RunOps Ops = %d", res.Ops)
	}
	if res.MOps() <= 0 {
		t.Fatal("non-positive MOps")
	}
}

// TestStrictPerWorkerMonotoneDrain: with deletions only, every worker of a
// strict queue must observe a non-decreasing key sequence — each DeleteMin
// returns the then-global minimum, which can only grow. This is the
// sharpest concurrent strictness check available without full
// linearizability checking. (hunt is excluded: its published algorithm
// admits transient inversions between a deletion's substitute placement
// and concurrent deletions, and is strict only at quiescence.)
func TestStrictPerWorkerMonotoneDrain(t *testing.T) {
	for _, name := range []string{"globallock", "linden", "lotan", "mound", "cbpq", "locksl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			const n = 30000
			q, err := New(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			r := rngNew(5)
			for i := 0; i < n; i++ {
				h.Insert(r.Uint64()%1000000, 0)
			}
			const workers = 4
			var wg sync.WaitGroup
			errs := make(chan string, workers)
			var total atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := q.Handle()
					var prev uint64
					first := true
					for {
						k, _, ok := h.DeleteMin()
						if !ok {
							return
						}
						total.Add(1)
						if !first && k < prev {
							errs <- fmt.Sprintf("worker %d: %d after %d", w, k, prev)
							return
						}
						prev, first = k, false
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatalf("per-worker drain regressed: %s", e)
			}
			if total.Load() != n {
				t.Fatalf("drained %d of %d", total.Load(), n)
			}
		})
	}
}
