package cpq

import (
	"runtime"
	"testing"

	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

// TestSteadyStateMemoryStable runs every paper queue through a long
// steady-state churn (insert+delete pairs at constant population) and
// checks that live heap memory does not creep: structures that defer
// physical cleanup (Lindén's dead prefix, the SLSM's superseded states,
// CBPQ's frozen chunks) must all shed garbage at the rate they create it.
func TestSteadyStateMemoryStable(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	for _, name := range PaperNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			r := rng.New(1)
			const population = 50_000
			for i := 0; i < population; i++ {
				h.Insert(r.Uint64()%1_000_000, 0)
			}
			churn := func(n int) {
				for i := 0; i < n; i++ {
					h.Insert(r.Uint64()%1_000_000, 0)
					h.DeleteMin()
				}
			}
			heapLive := func() uint64 {
				runtime.GC()
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				return m.HeapAlloc
			}
			churn(100_000) // warm-up: reach steady state
			base := heapLive()
			churn(400_000)
			after := heapLive()
			// Allow generous jitter (GC timing, size-class effects), but a
			// leak of one node per op would be ~400k nodes ≈ tens of MB.
			if after > base+16<<20 {
				t.Fatalf("heap grew from %d to %d bytes over 400k steady-state ops",
					base, after)
			}
		})
	}
}

// TestKLSM16MimicsLinden checks the paper's remark that "results for low
// relaxation (k=16) are not shown since its behavior closely mimics the
// Lindén and Jonsson priority queue": at 2 threads, klsm16's rank error
// must be tiny in absolute terms — the same order as a strict queue under
// stamping pessimism, far below even klsm128.
func TestKLSM16MimicsLinden(t *testing.T) {
	run := func(name string) quality.Result {
		return quality.Run(quality.Config{
			NewQueue: func(p int) pq.Queue {
				q, err := New(name, p)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			Threads:      2,
			OpsPerThread: 20_000,
			Workload:     workload.Uniform,
			KeyDist:      keys.Uniform32,
			Prefill:      20_000,
			Seed:         9,
		})
	}
	k16 := run("klsm16")
	k128 := run("klsm128")
	if k16.MeanRank > 16*3+2 {
		t.Fatalf("klsm16 mean rank %.1f — not linden-like", k16.MeanRank)
	}
	if k16.MeanRank >= k128.MeanRank {
		t.Fatalf("klsm16 (%.1f) should be well below klsm128 (%.1f)",
			k16.MeanRank, k128.MeanRank)
	}
}
