package cpq_test

import (
	"errors"
	"testing"

	"cpq"
)

// TestNewQueueDurable drives the one-constructor durable path: build with
// Options.Durable, operate, Close, rebuild over the same directory, and
// find the live set intact.
func TestNewQueueDurable(t *testing.T) {
	dir := t.TempDir()
	q, err := cpq.NewQueue("klsm128", cpq.Options{
		Threads: 2,
		Durable: &cpq.DurableOptions{Dir: dir, SnapshotEvery: 50},
	})
	if err != nil {
		t.Fatalf("NewQueue durable: %v", err)
	}
	if q.Name() != "dur:klsm128" {
		t.Fatalf("Name = %q, want dur:klsm128", q.Name())
	}
	h := q.Handle()
	for i := uint64(0); i < 120; i++ {
		h.Insert(i, i*2)
	}
	for i := 0; i < 20; i++ {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatal("queue empty early")
		}
	}
	if err := cpq.Close(q); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := cpq.NewQueue("klsm128", cpq.Options{
		Durable: &cpq.DurableOptions{Dir: dir},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cpq.Close(r)
	rh := r.Handle()
	count := 0
	for {
		if _, _, ok := rh.DeleteMin(); !ok {
			break
		}
		count++
	}
	if count != 100 {
		t.Fatalf("recovered %d items, want 100", count)
	}
}

// TestNewQueueDurableErrors pins the typed error for durable-incompatible
// requests.
func TestNewQueueDurableErrors(t *testing.T) {
	cases := []struct {
		name string
		opts cpq.DurableOptions
	}{
		{"empty dir", cpq.DurableOptions{}},
		{"negative window", cpq.DurableOptions{Dir: "x", GroupCommitWindow: -1}},
		{"negative snapshot", cpq.DurableOptions{Dir: "x", SnapshotEvery: -1}},
		{"negative segment", cpq.DurableOptions{Dir: "x", SegmentBytes: -1}},
		{"unknown backend", cpq.DurableOptions{Dir: "x", Backend: "tape"}},
	}
	for _, tc := range cases {
		opts := tc.opts
		_, err := cpq.NewQueue("linden", cpq.Options{Durable: &opts})
		var de *cpq.DurableError
		if !errors.As(err, &de) {
			t.Errorf("%s: err = %v, want *DurableError", tc.name, err)
			continue
		}
		if de.Name != "linden" || de.Reason == "" {
			t.Errorf("%s: incomplete DurableError: %+v", tc.name, de)
		}
	}
	// An unknown queue stays an UnknownQueueError even with Durable set.
	_, err := cpq.NewQueue("nope", cpq.Options{Durable: &cpq.DurableOptions{Dir: "x"}})
	var ue *cpq.UnknownQueueError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown queue with Durable: err = %v, want *UnknownQueueError", err)
	}
}

// TestCloseIsNilSafeEverywhere: cpq.Close must be a safe deferred default
// for every registry queue and for nil.
func TestCloseIsNilSafeEverywhere(t *testing.T) {
	if err := cpq.Close(nil); err != nil {
		t.Fatalf("Close(nil) = %v", err)
	}
	for _, name := range cpq.Names() {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: 2})
		if err != nil {
			t.Fatalf("NewQueue(%s): %v", name, err)
		}
		q.Handle().Insert(1, 1)
		if err := cpq.Close(q); err != nil {
			t.Fatalf("Close(%s) = %v", name, err)
		}
	}
	// Pools implement Closer: Close drains the free lists and closes the
	// wrapped queue.
	q, err := cpq.NewQueue("multiq-s4-b8", cpq.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := cpq.NewPool(q, cpq.PoolOptions{InitialHandles: 2})
	h := p.Acquire()
	h.Insert(7, 7)
	p.Release(h)
	if err := cpq.Close(p); err != nil {
		t.Fatalf("Close(pool) = %v", err)
	}
	if err := cpq.Close(p); err != nil {
		t.Fatalf("second Close(pool) = %v", err)
	}
}
