// Package cpq is a suite of concurrent priority queues with relaxed and
// strict semantics, reproducing the data structures and benchmarks of
// "Benchmarking Concurrent Priority Queues: Performance of k-LSM and Related
// Data Structures" (Gruber, Träff, Wimmer — SPAA 2016).
//
// All queues store (key, value) pairs of uint64 with smaller keys deleted
// first, and support exactly two operations: Insert and DeleteMin. Queues
// are accessed through per-goroutine Handles, which carry the thread-local
// state several of the designs depend on (the k-LSM's distributed component,
// per-thread random number generators):
//
//	q := cpq.NewKLSM(4096)
//	h := q.Handle() // one per goroutine
//	h.Insert(13, 37)
//	key, value, ok := h.DeleteMin()
//
// The batch helpers InsertN and DeleteMinN move several pairs per call,
// taking each structure's native batch-first path where it has one and
// falling back to a scalar loop otherwise (DESIGN.md §4c):
//
//	cpq.InsertN(h, kvs)                  // one synchronization episode
//	got := cpq.DeleteMinN(h, dst, len(dst))
//
// # Implementations
//
//   - NewKLSM: the k-LSM relaxed queue (lock-free, linearizable; DeleteMin
//     returns one of the kP smallest items, P = number of handles).
//   - NewDLSM, NewSLSM: the k-LSM's two components as standalone queues.
//   - NewLinden: the Lindén-Jonsson skiplist queue (strict, lock-free).
//   - NewSprayList: the SprayList (relaxed, lock-free, random-walk deletes).
//   - NewMultiQueue: the MultiQueue (relaxed, c·P locked sequential heaps).
//   - NewGlobalLock: sequential binary heap behind one mutex (baseline).
//   - NewLotan: Shavit-Lotan style skiplist queue (strict at quiescence).
//   - NewHunt: the Hunt et al. fine-grained locked heap.
//   - NewMound: a lock-based Mound (tree of sorted lists).
//   - NewCBPQ: a chunk-based priority queue (FAA-filled chunks, strict).
//
// The registry (NewQueue, Names) maps the paper's benchmark identifiers
// ("klsm128", "linden", "spray", "multiq", "globallock", ...) to factories,
// parameterized by an Options struct (intended thread count, per-structure
// tuning). Unknown identifiers are reported as *UnknownQueueError. The
// two-argument New(name, threads) form is deprecated in favor of NewQueue.
package cpq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cpq/internal/cbpq"
	"cpq/internal/core"
	"cpq/internal/durable"
	"cpq/internal/hunt"
	"cpq/internal/linden"
	"cpq/internal/locksl"
	"cpq/internal/lotan"
	"cpq/internal/mound"
	"cpq/internal/multiq"
	"cpq/internal/pq"
	"cpq/internal/seqheap"
	"cpq/internal/spray"
)

// Queue is a concurrent priority queue; see the package documentation.
type Queue = pq.Queue

// Handle is a per-goroutine access handle; see the package documentation.
type Handle = pq.Handle

// Item is a key-value pair.
type Item = pq.Item

// KV is the element type of the batch API (InsertN, DeleteMinN); it is an
// alias of Item.
type KV = pq.KV

// Pool is an elastic handle pool over any registry queue: Acquire/Release
// with a zero-alloc per-shard fast path, lock-free recovery of abandoned
// handles, and capped growth. See the pq package documentation and
// DESIGN.md's handle-lifecycle section.
type Pool = pq.Pool

// PooledHandle is the Handle implementation Pool.Acquire returns.
type PooledHandle = pq.PooledHandle

// PoolOptions configures NewPool.
type PoolOptions = pq.PoolOptions

// NewPool wraps q in an elastic handle pool. Goroutines call Acquire for a
// handle and Release when done; a goroutine that exits without Release
// merely delays its handle's reuse (the pool steals it back) instead of
// leaking it. Prefer this over per-goroutine q.Handle() whenever goroutine
// lifetimes are short or unbounded relative to the queue's.
func NewPool(q Queue, opts PoolOptions) *Pool { return pq.NewPool(q, opts) }

// NewKLSM returns a k-LSM relaxed priority queue with relaxation parameter
// k. DeleteMin returns one of the kP smallest items, where P is the number
// of handles in use. The paper evaluates k ∈ {128, 256, 4096}.
func NewKLSM(k int) *core.KLSM { return core.NewKLSM(k) }

// NewDLSM returns the k-LSM's thread-local component as a standalone queue:
// embarrassingly parallel, with work stealing when a handle runs empty.
func NewDLSM() *core.DLSM { return core.NewDLSM() }

// NewSLSM returns the k-LSM's shared component as a standalone queue:
// a global LSM whose DeleteMin skips at most k items.
func NewSLSM(k int) *core.SLSM { return core.NewSLSM(k) }

// NewLinden returns a Lindén-Jonsson strict lock-free skiplist queue with
// the default physical-deletion batching threshold.
func NewLinden() *linden.Queue { return linden.New(0) }

// NewLindenBound returns a Lindén-Jonsson queue with an explicit batching
// threshold (the design's main tuning parameter).
func NewLindenBound(boundOffset int) *linden.Queue { return linden.New(boundOffset) }

// NewSprayList returns a SprayList tuned for up to p concurrent threads.
func NewSprayList(p int) *spray.Queue { return spray.New(p) }

// NewSprayListParams returns a SprayList with explicit spray parameters.
func NewSprayListParams(p int, params spray.Params) *spray.Queue {
	return spray.NewParams(p, params)
}

// NewMultiQueue returns a MultiQueue with c·p sequential sub-queues
// (c <= 0 selects the paper's c = 4).
func NewMultiQueue(c, p int) *multiq.Queue { return multiq.New(c, p) }

// NewMultiQueueDAry returns a MultiQueue whose sub-queues are d-ary heaps
// instead of binary heaps (the sub-heap ablation).
func NewMultiQueueDAry(c, p, d int) *multiq.Queue {
	return multiq.NewWith(c, p, func() multiq.SubHeap { return seqheap.NewDHeap(d, 0) })
}

// NewMultiQueueEngineered returns the engineered MultiQueue of Williams and
// Sanders ("Engineering MultiQueues", arXiv:2107.01350): the classic c·p
// sub-queue layout extended with stickiness s (a handle reuses its last
// sub-queue for up to s consecutive lock acquisitions before re-sampling)
// and per-handle insertion/deletion buffers of b items (one lock
// acquisition amortized over a batch of b operations). s <= 1 disables
// stickiness, b <= 1 disables buffering; c <= 0 selects the paper's c = 4.
// Registry identifiers look like "multiq-s4-b8" or "multiq-c8-s4-b8".
func NewMultiQueueEngineered(c, p, s, b int) *multiq.Queue {
	return multiq.NewEngineered(c, p, s, b)
}

// NewGlobalLock returns the baseline: a sequential binary heap protected by
// a single global mutex.
func NewGlobalLock() *seqheap.GlobalLock { return seqheap.NewGlobalLock() }

// NewLotan returns a Shavit-Lotan style skiplist queue.
func NewLotan() *lotan.Queue { return lotan.New() }

// NewHunt returns the Hunt et al. fine-grained locked heap.
func NewHunt() *hunt.Queue { return hunt.New(0) }

// NewMound returns a lock-based Mound queue.
func NewMound() *mound.Queue { return mound.New() }

// NewCBPQ returns a chunk-based priority queue (strict).
func NewCBPQ() *cbpq.Queue { return cbpq.New() }

// NewLockedSkiplist returns a skiplist behind one global mutex — the second
// global-lock baseline (appendix D), isolating the sequential-structure
// cost (pointer skiplist vs. array heap) from concurrency effects.
func NewLockedSkiplist() *locksl.Queue { return locksl.New() }

// NewMultiQueuePairing returns a MultiQueue whose sub-queues are pairing
// heaps (sequential-substrate ablation).
func NewMultiQueuePairing(c, p int) *multiq.Queue {
	return multiq.NewWith(c, p, func() multiq.SubHeap { return &seqheap.PairingHeap{} })
}

// Options configures queue construction through the registry (NewQueue).
// The zero value is valid: a single-threaded queue with every structure's
// default tuning.
type Options struct {
	// Threads is the intended number of concurrent handles. Structures
	// whose layout depends on the thread count (the SprayList's walk
	// geometry, the MultiQueue's c·P sub-queue array) are sized for it;
	// the rest ignore it. Values < 1 are treated as 1.
	Threads int
	// LindenBoundOffset overrides the Lindén-Jonsson physical-deletion
	// batching threshold for "linden" (0 selects the default). Other
	// queues ignore it.
	LindenBoundOffset int
	// SprayParams overrides the spray-walk tuning parameters for "spray"
	// (nil selects the paper's defaults). Other queues ignore it.
	SprayParams *spray.Params
	// Durable, when non-nil, wraps the constructed queue in the durable
	// tier (internal/durable): a group-commit write-ahead log plus
	// periodic snapshots persisted under Durable.Dir, recovered on the
	// next construction over the same directory. A malformed Durable
	// configuration yields a *DurableError.
	Durable *DurableOptions
}

// DurableOptions configures the durable tier for NewQueue. The zero value
// is not valid: Dir is required.
type DurableOptions struct {
	// Dir is the directory the WAL segments and snapshots live in. One
	// directory serves one queue; constructing over a non-empty directory
	// replays its contents into the new queue first.
	Dir string
	// GroupCommitWindow is an optional dally the commit leader takes
	// before claiming the pending log buffer, trading latency for larger
	// commit cohorts. Zero is the sensible default.
	GroupCommitWindow time.Duration
	// SnapshotEvery takes a snapshot (and truncates the WAL) every that
	// many logged operations; zero disables automatic snapshots (one is
	// still taken on Close).
	SnapshotEvery int
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size; zero selects the 1 MiB default.
	SegmentBytes int
	// Naive disables group commit — every operation fsyncs synchronously.
	// The fsync-per-op baseline for benchmarks; never what a service
	// wants.
	Naive bool
	// Backend selects the WAL store implementation: "mmap" (preallocated
	// memory-mapped segments, fails on platforms without mmap), "file"
	// (plain appends), or "" for the platform default — mmap where
	// supported, file otherwise. Anything else is a *DurableError.
	Backend string
}

// DurableError reports a durable-incompatible NewQueue request — a
// malformed DurableOptions or a backend that could not be opened. Match
// with errors.As; Unwrap exposes the backend cause when there is one.
type DurableError struct {
	Name   string // queue identifier of the request
	Reason string
	Err    error // backend cause, nil for pure validation failures
}

func (e *DurableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("cpq: durable %q: %s: %v", e.Name, e.Reason, e.Err)
	}
	return fmt.Sprintf("cpq: durable %q: %s", e.Name, e.Reason)
}

func (e *DurableError) Unwrap() error { return e.Err }

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// UnknownQueueError is returned by NewQueue (and New) when the identifier
// does not name any registered queue. Known carries the registry's
// identifiers so callers can print an accurate usage hint.
type UnknownQueueError struct {
	Name  string
	Known []string
}

func (e *UnknownQueueError) Error() string {
	return fmt.Sprintf("cpq: unknown queue %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// NewQueue constructs a queue by its benchmark identifier, e.g. "klsm128",
// "linden", "spray", "multiq", "globallock", "lotan", "dlsm", "slsm256",
// "hunt", "mound", "multiq-s4-b8". An unrecognized identifier yields an
// *UnknownQueueError (match with errors.As); a recognized identifier with a
// malformed parameter yields a plain error describing the parameter; a
// malformed Options.Durable yields a *DurableError.
//
// With Options.Durable set, the returned queue is the durable wrapper:
// its Name gains a "dur:" prefix, operations are write-ahead logged with
// group commit, and Close (via cpq.Close) must be called to sync, take
// the final snapshot and release the store.
func NewQueue(name string, opts Options) (Queue, error) {
	q, err := newBase(name, opts)
	if err != nil || opts.Durable == nil {
		return q, err
	}
	d := opts.Durable
	var reason string
	switch {
	case d.Dir == "":
		reason = "Dir is required"
	case d.GroupCommitWindow < 0:
		reason = "negative GroupCommitWindow"
	case d.SnapshotEvery < 0:
		reason = "negative SnapshotEvery"
	case d.SegmentBytes < 0:
		reason = "negative SegmentBytes"
	case d.Backend != "" && d.Backend != "mmap" && d.Backend != "file":
		reason = fmt.Sprintf("unknown Backend %q", d.Backend)
	}
	if reason != "" {
		return nil, &DurableError{Name: name, Reason: reason}
	}
	dq, err := durable.Wrap(q, durable.Options{
		Dir:               d.Dir,
		GroupCommitWindow: d.GroupCommitWindow,
		SnapshotEvery:     d.SnapshotEvery,
		SegmentBytes:      d.SegmentBytes,
		Naive:             d.Naive,
		Backend:           d.Backend,
	})
	if err != nil {
		return nil, &DurableError{Name: name, Reason: "open durable store", Err: err}
	}
	return dq, nil
}

// newBase constructs the in-memory queue a registry identifier names.
func newBase(name string, opts Options) (Queue, error) {
	threads := opts.threads()
	n := strings.ToLower(strings.TrimSpace(name))
	switch {
	case n == "linden":
		return NewLindenBound(opts.LindenBoundOffset), nil
	case n == "spray", n == "spraylist":
		if opts.SprayParams != nil {
			return NewSprayListParams(threads, *opts.SprayParams), nil
		}
		return NewSprayList(threads), nil
	case n == "multiq", n == "multiqueue":
		return NewMultiQueue(multiq.DefaultC, threads), nil
	case n == "globallock", n == "heap":
		return NewGlobalLock(), nil
	case n == "lotan":
		return NewLotan(), nil
	case n == "dlsm":
		return NewDLSM(), nil
	case n == "hunt":
		return NewHunt(), nil
	case n == "mound":
		return NewMound(), nil
	case n == "cbpq":
		return NewCBPQ(), nil
	case n == "locksl", n == "lockedskiplist":
		return NewLockedSkiplist(), nil
	case strings.HasPrefix(n, "klsm"):
		k, err := strconv.Atoi(n[len("klsm"):])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("cpq: bad k-LSM relaxation in %q", name)
		}
		return NewKLSM(k), nil
	case strings.HasPrefix(n, "slsm"):
		k, err := strconv.Atoi(n[len("slsm"):])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("cpq: bad SLSM relaxation in %q", name)
		}
		return NewSLSM(k), nil
	case strings.HasPrefix(n, "multiq-"):
		c, s, b, err := parseMultiQSpec(n[len("multiq-"):])
		if err != nil {
			return nil, fmt.Errorf("cpq: %v in %q", err, name)
		}
		return NewMultiQueueEngineered(c, threads, s, b), nil
	case strings.HasPrefix(n, "multiq"):
		c, err := strconv.Atoi(n[len("multiq"):])
		if err != nil || c < 1 {
			return nil, fmt.Errorf("cpq: bad MultiQueue factor in %q", name)
		}
		return NewMultiQueue(c, threads), nil
	}
	return nil, &UnknownQueueError{Name: name, Known: Names()}
}

// New constructs a queue by its benchmark identifier for the given intended
// thread count.
//
// Deprecated: use NewQueue, which takes an Options struct and leaves room
// for per-structure tuning. New(name, threads) is exactly
// NewQueue(name, Options{Threads: threads}).
func New(name string, threads int) (Queue, error) {
	return NewQueue(name, Options{Threads: threads})
}

// Flush publishes any operations buffered in h so that every item the
// handle holds privately becomes reachable through other handles; handles
// that do not buffer (and nil) are no-ops. Call it on each worker handle
// when its goroutine stops operating on the queue.
func Flush(h Handle) { pq.Flush(h) }

// PeekMin reports (but does not remove) a current minimum candidate of v,
// which may be a Queue or a Handle — whichever side supports peeking for
// the structure at hand. ok is false for non-peekable (or nil) v, and the
// result is approximate under concurrency.
func PeekMin(v any) (key, value uint64, ok bool) { return pq.PeekMin(v) }

// Close tears down v — a Queue, Pool, or anything else a call site holds
// at exit. Queues that hold resources beyond the heap (the durable tier's
// WAL and store, a Pool's free lists and finalizers) flush and release
// them; everything else (and nil) is a no-op returning nil. The
// capability-checked form of pq.Closer, exactly as Flush is for Flusher,
// so every call site can uniformly `defer cpq.Close(q)`.
func Close(v any) error { return pq.Close(v) }

// InsertN inserts every element of kvs through h in one call, using the
// handle's native batch path where the structure has one (one lock
// acquisition, one CAS publish, one predecessor search shared across the
// batch — see DESIGN.md §4c) and a scalar Insert loop otherwise. kvs is
// caller-owned; a native path may reorder it in place (typically sorting
// by key) but never retains it.
func InsertN(h Handle, kvs []KV) { pq.InsertN(h, kvs) }

// DeleteMinN removes up to n items through h into a prefix of dst and
// returns how many were removed (n is clamped to len(dst)). Each removed
// item individually satisfies the queue's relaxation bound — a batch is n
// delete-mins sharing their synchronization, not a weaker contract. A
// return short of n means the queue appeared empty to the handle
// mid-batch. Handles without a native path fall back to a DeleteMin loop.
func DeleteMinN(h Handle, dst []KV, n int) int { return pq.DeleteMinN(h, dst, n) }

// parseMultiQSpec parses the dash-separated parameter list of an engineered
// MultiQueue identifier, e.g. "s4-b8" or "c8-s4-b8" (from "multiq-s4-b8",
// "multiq-c8-s4-b8"). Omitted parameters default to c = the paper's 4,
// s = 1, b = 1 (extension off); each parameter may appear at most once.
func parseMultiQSpec(spec string) (c, s, b int, err error) {
	c, s, b = multiq.DefaultC, 1, 1
	seen := [256]bool{}
	for _, seg := range strings.Split(spec, "-") {
		if len(seg) < 2 {
			return 0, 0, 0, fmt.Errorf("bad MultiQueue parameter %q", seg)
		}
		v, convErr := strconv.Atoi(seg[1:])
		if convErr != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad MultiQueue parameter %q", seg)
		}
		if seen[seg[0]] {
			return 0, 0, 0, fmt.Errorf("duplicate MultiQueue parameter %q", seg)
		}
		seen[seg[0]] = true
		switch seg[0] {
		case 'c':
			c = v
		case 's':
			s = v
		case 'b':
			b = v
		default:
			return 0, 0, 0, fmt.Errorf("bad MultiQueue parameter %q (want c<n>, s<n> or b<n>)", seg)
		}
	}
	return c, s, b, nil
}

// Names lists the benchmark identifiers of the paper's seven compared
// variants plus this suite's extensions, in the paper's display order.
func Names() []string {
	return []string{
		"klsm128", "klsm256", "klsm4096", // the paper's k-LSM variants
		"linden", "spray", "multiq", "globallock", // the paper's comparisons
		"lotan", "hunt", "mound", "cbpq", "locksl", "dlsm", "slsm256", // extensions (appendix D)
		"multiq-s4-b8", // engineered MultiQueue (Williams-Sanders stickiness + buffers)
	}
}

// PaperNames lists only the seven variants shown in the paper's figures.
func PaperNames() []string {
	return []string{"klsm128", "klsm256", "klsm4096", "linden", "spray", "multiq", "globallock"}
}

// SortNames orders queue identifiers in canonical display order (paper
// variants first, then extensions, then unknown names alphabetically).
func SortNames(names []string) {
	rank := map[string]int{}
	for i, n := range Names() {
		rank[n] = i
	}
	sort.SliceStable(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
}
